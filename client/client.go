// Package client is the typed HTTP client for the addict-serve daemon
// (cmd/addict-serve): thin, stateless methods over the serve wire format —
// JSON request/response for profile and schedule, NDJSON streams for sweep
// rows and bench progress — with transparent retry of transport failures.
// The server owns the engine pool and all caching; this package only
// shapes requests and decodes replies, so it is safe to share one Client
// across goroutines.
//
// Design follows the thin-client/server-owned-engine split: requests are
// plain values, replies are decoded into exported wire structs, and a busy
// server (admission limit reached) surfaces as *BusyError carrying the
// server's Retry-After hint rather than being retried behind the caller's
// back — load shedding is the caller's policy decision.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"addict"
	"addict/internal/pool"
)

// BusyError reports a 429 from the admission limiter: the server is at its
// concurrent-run capacity. RetryAfter is the server's hint, floored at one
// second — even when the header is missing or unparseable — so a caller
// that sleeps for RetryAfter before retrying can never spin in a hot loop
// against a server that just declared itself overloaded.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("addict-serve busy (retry after %s)", e.RetryAfter)
}

// StatusError reports any other non-2xx reply, with the server's error
// text when the body carried one.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("addict-serve: %s (HTTP %d)", e.Message, e.Code)
	}
	return fmt.Sprintf("addict-serve: HTTP %d", e.Code)
}

// Client talks to one addict-serve base URL. The zero value is not usable;
// construct with New.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default:
// http.DefaultClient). Streaming endpoints hold the connection for the
// length of the run, so a client with a short Timeout will truncate long
// sweeps — prefer per-call contexts for deadlines.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a request is re-sent after a transport
// failure (connection refused/reset before a reply arrives; default 2).
// HTTP-level failures — 429 included — are never retried automatically.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// New builds a client for a base URL ("http://127.0.0.1:8414").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    trimSlash(base),
		hc:      http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL returns the server base URL the client was built with (trailing
// slashes trimmed) — useful for handing raw endpoints like /metrics to
// tools that speak plain HTTP.
func (c *Client) BaseURL() string { return c.base }

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// do sends one request, retrying transport failures on the shared
// pool.Backoff schedule (the same one the distributed workers use, capped
// at 5s). Bodies are byte slices, so every attempt replays the same
// bytes. The response is returned undrained; callers own Body.Close.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(pool.Backoff(attempt, c.backoff, 5*time.Second)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// The caller's context ending is final; transport hiccups retry.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// errFromResponse maps a non-2xx reply to a typed error, draining the body.
func errFromResponse(resp *http.Response) error {
	defer resp.Body.Close()
	var wire struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = json.Unmarshal(data, &wire)
	if resp.StatusCode == http.StatusTooManyRequests {
		return &BusyError{RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())}
	}
	return &StatusError{Code: resp.StatusCode, Message: wire.Error}
}

// parseRetryAfter interprets a 429's Retry-After header as a backoff
// duration. Both RFC 9110 forms are accepted — delta-seconds and HTTP-date
// — and every other outcome (missing header, garbage, negative seconds, a
// date already past) is floored at one second: a zero backoff turns any
// sleep-and-retry loop around BusyError into a hot loop hammering a server
// that just said it is overloaded.
func parseRetryAfter(h string, now time.Time) time.Duration {
	const floor = time.Second
	h = strings.TrimSpace(h)
	if secs, err := strconv.Atoi(h); err == nil {
		if d := time.Duration(secs) * time.Second; d > floor {
			return d
		}
		return floor
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > floor {
			return d
		}
		return floor
	}
	return floor
}

// getJSON GETs path and decodes the JSON reply into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errFromResponse(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON POSTs a JSON body to path and decodes the JSON reply into out.
func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errFromResponse(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode}
	}
	return nil
}

// Workloads lists every workload name the server resolves: the TPC
// benchmarks plus the encoded synthetic presets.
func (c *Client) Workloads(ctx context.Context) ([]string, error) {
	var wire struct {
		Workloads []string `json:"workloads"`
	}
	if err := c.getJSON(ctx, "/v1/workloads", &wire); err != nil {
		return nil, err
	}
	return wire.Workloads, nil
}

// ProfileSummary is the serving view of an Algorithm 1 profile: how many
// transaction types and operations were profiled and how many migration
// points the profile places. (The full profile stays server-side, in the
// session cache, where Schedule consumes it.)
type ProfileSummary struct {
	Workload        string `json:"workload"`
	TxnTypes        int    `json:"txn_types"`
	Ops             int    `json:"ops"`
	MigrationPoints int    `json:"migration_points"`
}

// Profile computes (or serves from the session cache) the migration-point
// profile of a workload name — TPC or encoded "synth:" — and returns its
// summary.
func (c *Client) Profile(ctx context.Context, workload string) (*ProfileSummary, error) {
	in := struct {
		Workload string `json:"workload"`
	}{workload}
	out := &ProfileSummary{}
	if err := c.postJSON(ctx, "/v1/profile", in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ScheduleResult is one (workload, mechanism) replay outcome reduced to
// the sweep metrics.
type ScheduleResult struct {
	Workload  string              `json:"workload"`
	Mechanism string              `json:"mechanism"`
	Metrics   addict.SweepMetrics `json:"metrics"`
}

// Schedule replays a workload's evaluation window under a mechanism
// ("Baseline", "STREX", "SLICC", "ADDICT") on the server's session.
func (c *Client) Schedule(ctx context.Context, workload, mechanism string) (*ScheduleResult, error) {
	in := struct {
		Workload  string `json:"workload"`
		Mechanism string `json:"mechanism"`
	}{workload, mechanism}
	out := &ScheduleResult{}
	if err := c.postJSON(ctx, "/v1/schedule", in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SweepRow is one sweep unit's result as streamed by the server (the
// sweep engine's JSONL row: identifying axis values plus metrics; axis
// fields beyond these three are ignored on decode but present on the
// wire).
type SweepRow struct {
	ID        string `json:"id"`
	Workload  string `json:"workload"`
	Mechanism string `json:"mechanism"`
	addict.SweepMetrics
}

// DistRequest asks the server to execute a sweep distributed: the serving
// process coordinates, contributes LocalWorkers in-process workers
// (server-defaulted to 1 when 0), and listens for remote addict-sweep
// -join workers on Listen (server-chosen loopback port when empty). The
// streamed rows are byte-identical to the same spec swept serially.
type DistRequest struct {
	Listen       string `json:"listen,omitempty"`
	LocalWorkers int    `json:"local_workers,omitempty"`
}

// Sweep executes a declarative grid on the server and streams each unit's
// row to fn in grid-expansion order, returning the row count. Identical
// concurrent sweep requests coalesce server-side into one computation. A
// non-nil error from fn stops the stream and is returned.
func (c *Client) Sweep(ctx context.Context, spec addict.SweepSpec, fn func(SweepRow) error) (int, error) {
	return c.sweep(ctx, spec, nil, fn)
}

// SweepDistributed is Sweep executed by the server's distributed mode (see
// DistRequest). Because the merged output is byte-identical to a serial
// sweep of the same spec, the server caches both under one key — a grid
// already swept serially streams back without coordinating anything.
func (c *Client) SweepDistributed(ctx context.Context, spec addict.SweepSpec, dist DistRequest, fn func(SweepRow) error) (int, error) {
	return c.sweep(ctx, spec, &dist, fn)
}

func (c *Client) sweep(ctx context.Context, spec addict.SweepSpec, dist *DistRequest, fn func(SweepRow) error) (int, error) {
	body, err := json.Marshal(struct {
		Spec addict.SweepSpec `json:"spec"`
		Dist *DistRequest     `json:"dist,omitempty"`
	}{spec, dist})
	if err != nil {
		return 0, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/sweep", body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, errFromResponse(resp)
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row SweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			return n, fmt.Errorf("client: bad sweep row: %w", err)
		}
		n++
		if fn != nil {
			if err := fn(row); err != nil {
				return n, err
			}
		}
	}
	return n, sc.Err()
}

// BenchRequest scopes a server-side benchmark-harness run. Zero fields
// inherit the server session's defaults; seed, scale, and trace windows
// are fixed per server (they define what the session caches), so a bench
// request chooses only what to measure and how long.
type BenchRequest struct {
	Workloads     []string `json:"workloads,omitempty"`
	Mechanisms    []string `json:"mechanisms,omitempty"`
	MinRuns       int      `json:"min_runs,omitempty"`
	MinDurationMS int      `json:"min_duration_ms,omitempty"`
}

// BenchEvent is one NDJSON line of the bench stream: "progress" events
// carry one harness progress line each, the final "report" event carries
// the full report, and "error" reports a run that failed after the stream
// began.
type BenchEvent struct {
	Type   string              `json:"type"`
	Line   string              `json:"line,omitempty"`
	Report *addict.BenchReport `json:"report,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// Bench runs the replay benchmark harness on the server, invoking
// onProgress (when non-nil) per progress line and returning the final
// report. Identical concurrent bench requests coalesce into one
// measurement; coalesced followers receive the report without the
// leader's intermediate progress lines.
func (c *Client) Bench(ctx context.Context, req BenchRequest, onProgress func(line string)) (*addict.BenchReport, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/bench", body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errFromResponse(resp)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev BenchEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("client: bad bench event: %w", err)
		}
		switch ev.Type {
		case "progress":
			if onProgress != nil {
				onProgress(ev.Line)
			}
		case "report":
			return ev.Report, nil
		case "error":
			return nil, &StatusError{Code: http.StatusInternalServerError, Message: ev.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("client: bench stream ended without a report")
}

// CacheCounters mirrors the server's cache statistics (resident weight in
// approximate bytes, entries, hits/misses/evictions). Store is the
// on-disk artifact store layered under the engine cache; nil when the
// server runs memory-only.
type CacheCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`

	Store *StoreCounters `json:"store,omitempty"`
}

// StoreCounters mirrors the server's on-disk artifact store statistics
// (addict.StoreStats on the wire): read outcomes, persisted entries,
// quarantined corruption, GC pressure, and the resident set.
type StoreCounters struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Writes         uint64 `json:"writes"`
	VerifyFailures uint64 `json:"verify_failures"`
	GCEvictions    uint64 `json:"gc_evictions"`
	WriteErrors    uint64 `json:"write_errors"`
	Entries        int64  `json:"entries"`
	Bytes          int64  `json:"bytes"`
}

// DistWorkerCounters is one worker's slice of the server's most recent
// distributed sweep: units leased/completed, leases lost to its crashes
// (requeued), compute failures it reported, discarded duplicate results,
// and its self-reported artifact-store counters.
type DistWorkerCounters struct {
	Name       string         `json:"name,omitempty"`
	Leased     uint64         `json:"leased"`
	Completed  uint64         `json:"completed"`
	Requeued   uint64         `json:"requeued"`
	Failed     uint64         `json:"failed"`
	Duplicates uint64         `json:"duplicates"`
	Store      *StoreCounters `json:"store,omitempty"`
}

// DistCounters mirrors the coordinator summary of the server's most
// recent distributed sweep (addict.DistSummary on the wire).
type DistCounters struct {
	Units      int                           `json:"units"`
	Completed  int                           `json:"completed"`
	Leases     uint64                        `json:"leases"`
	Requeues   uint64                        `json:"requeues"`
	Failures   uint64                        `json:"failures"`
	Duplicates uint64                        `json:"duplicates"`
	Stragglers uint64                        `json:"straggler_redispatches"`
	Workers    map[string]DistWorkerCounters `json:"workers"`
	Done       bool                          `json:"done"`
	Abort      string                        `json:"abort,omitempty"`
}

// ServerMetrics is the /debug/vars snapshot: per-endpoint request and
// computation counters, coalescing and admission counters, and the engine
// and response cache statistics. Dist is the most recent distributed
// sweep's coordinator summary; nil when none has run.
type ServerMetrics struct {
	Requests      map[string]int64 `json:"requests"`
	Computations  map[string]int64 `json:"computations"`
	CoalescedHits int64            `json:"coalesced_hits"`
	Rejected      int64            `json:"rejected"`
	ActiveRuns    int64            `json:"active_runs"`
	RunsCancelled int64            `json:"runs_cancelled"`
	EngineCache   CacheCounters    `json:"engine_cache"`
	ResponseCache CacheCounters    `json:"response_cache"`
	ArtifactStore *StoreCounters   `json:"artifact_store,omitempty"`
	Dist          *DistCounters    `json:"dist,omitempty"`
}

// Metrics fetches the server's expvar snapshot.
func (c *Client) Metrics(ctx context.Context) (*ServerMetrics, error) {
	out := &ServerMetrics{}
	if err := c.getJSON(ctx, "/debug/vars", out); err != nil {
		return nil, err
	}
	return out, nil
}
