package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"missing", "", time.Second},
		{"garbage", "soon", time.Second},
		{"zero seconds", "0", time.Second},
		{"negative seconds", "-5", time.Second},
		{"one second", "1", time.Second},
		{"delta seconds", "7", 7 * time.Second},
		{"padded delta", "  30  ", 30 * time.Second},
		{"fractional is not delta-seconds", "2.5", time.Second},
		{"http date ahead", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), time.Second},
		{"http date now", now.Format(http.TimeFormat), time.Second},
		{"rfc850 date ahead", now.Add(2 * time.Minute).Format("Monday, 02-Jan-06 15:04:05 GMT"), 2 * time.Minute},
		{"malformed date", "Mon, 99 Xxx 2026 12:00:00 GMT", time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.header, now); got != tc.want {
				t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
			}
		})
	}
}

// TestBusyErrorFloor locks the hot-loop fix end to end: whatever a 429
// carries in Retry-After — nothing, garbage, or a date — the BusyError a
// caller sleeps on is never below one second.
func TestBusyErrorFloor(t *testing.T) {
	headers := []string{"", "garbage", "0", "-3"}
	for _, h := range headers {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h != "" {
				w.Header().Set("Retry-After", h)
			}
			w.WriteHeader(http.StatusTooManyRequests)
		}))
		c := New(srv.URL, WithRetries(0))
		_, err := c.Workloads(context.Background())
		srv.Close()
		be, ok := err.(*BusyError)
		if !ok {
			t.Fatalf("header %q: err = %v (%T), want *BusyError", h, err, err)
		}
		if be.RetryAfter < time.Second {
			t.Errorf("header %q: RetryAfter = %v, below the 1s floor", h, be.RetryAfter)
		}
	}
}
