package addict

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"addict/internal/dist"
	"addict/internal/sweep"
)

// DistSummary is the coordinator's progress/counter snapshot: units
// completed, leases granted, requeues after worker crashes, straggler
// re-dispatches, and per-worker counters including each worker's
// self-reported artifact-store hit rates.
type DistSummary = dist.Summary

// DistWorkerCounters is one worker's slice of a distributed run.
type DistWorkerCounters = dist.WorkerCounters

// DistWorkerOptions configure one worker process; see JoinSweep.
type DistWorkerOptions = dist.WorkerOptions

// DistConfig configures a distributed sweep's coordinator side.
type DistConfig struct {
	// Listen is the address the worker endpoint binds ("127.0.0.1:0"
	// when empty: loopback, kernel-assigned port). OnListen, when set,
	// receives the bound address before any unit is leased — how callers
	// learn the port under ":0" and how CLIs print the join URL.
	Listen   string
	OnListen func(addr string)
	// LocalWorkers is how many in-process workers to run alongside the
	// coordinator (they share the session's store directory and worker
	// bound). 0 means the grid waits entirely for remote workers.
	LocalWorkers int
	// Lease-protocol knobs; zero values select the internal/dist defaults
	// (60s leases, batch 2, 3 retries, straggler re-dispatch at half a
	// lease). See internal/dist.Options.
	LeaseTimeout   time.Duration
	LeaseBatch     int
	MaxRetries     int
	StragglerAfter time.Duration
	// ShutdownLinger keeps the worker endpoint answering "done" after the
	// merged report is complete, so remote workers polling at their own
	// cadence exit cleanly instead of hitting a closed port (default 2s).
	ShutdownLinger time.Duration
}

// SweepDistributed executes a sweep grid across processes: this session
// becomes the coordinator — expanding the spec into stable unit IDs,
// leasing units to workers over HTTP/JSON, requeueing leases whose workers
// crash, retrying failures with backoff, and re-dispatching stragglers
// near the tail — and merges worker results into out in grid order,
// byte-identical to what Sweep would emit for the same spec. Workers join
// with JoinSweep (or addict-sweep -join) and rendezvous on a shared store
// directory so re-dispatched units are cache hits. Base parameters the
// spec leaves zero inherit the session's, exactly as in Sweep.
//
// The returned summary is valid even when err is non-nil (it reports how
// far the run got). Cancellation aborts the run and tells workers to stop.
func (e *Engine) SweepDistributed(ctx context.Context, out io.Writer, spec SweepSpec, format string, cfg DistConfig) (DistSummary, error) {
	em, err := sweep.NewEmitter(format, out)
	if err != nil {
		return DistSummary{}, err
	}
	e.inheritBase(&spec.Seed, &spec.Scale, &spec.ProfileTraces, &spec.EvalTraces)
	c, err := dist.NewCoordinator(spec, dist.Options{
		LeaseTimeout:   cfg.LeaseTimeout,
		LeaseBatch:     cfg.LeaseBatch,
		MaxRetries:     cfg.MaxRetries,
		StragglerAfter: cfg.StragglerAfter,
	})
	if err != nil {
		return DistSummary{}, err
	}

	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return DistSummary{}, fmt.Errorf("addict: dist listen: %w", err)
	}
	srv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	if cfg.OnListen != nil {
		cfg.OnListen(addr)
	}

	// Local workers share the session's store directory (the rendezvous
	// point) and worker bound, and talk to the coordinator over loopback —
	// the same path remote workers use, so every worker is exercised
	// identically.
	var wg sync.WaitGroup
	workerErrs := make([]error, cfg.LocalWorkers)
	for i := 0; i < cfg.LocalWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = dist.Work(ctx, "http://"+addr, dist.WorkerOptions{
				Name:        fmt.Sprintf("local%d", i+1),
				StoreDir:    e.storeDir,
				StoreBudget: e.storeBudget,
				Workers:     e.workers,
			})
		}(i)
	}
	if cfg.LocalWorkers > 0 {
		// If every local worker dies while no remote worker has joined,
		// the grid can never finish — fail the run instead of hanging.
		go func() {
			wg.Wait()
			for _, werr := range workerErrs {
				if werr == nil {
					return
				}
			}
			if s := c.Summary(); len(s.Workers) == cfg.LocalWorkers && !s.Done {
				c.Abort("all local workers failed: " + workerErrs[0].Error())
			}
		}()
	}

	runErr := c.Run(ctx, em)
	summary := func() DistSummary { return c.Summary() }

	// Keep the endpoint serving until every joined worker has been told
	// the run is over (or the linger expires — a crashed worker never
	// asks), so workers polling on their own cadence exit 0 instead of
	// dialing a closed port. Local workers drain through the same path.
	wg.Wait()
	linger := cfg.ShutdownLinger
	if linger <= 0 {
		linger = 2 * time.Second
	}
	for deadline := time.Now().Add(linger); time.Now().Before(deadline) && !c.AllReleased(); {
		time.Sleep(20 * time.Millisecond)
	}
	srv.Close()
	<-serveErr

	if runErr != nil {
		return summary(), runErr
	}
	// The merge succeeded, so worker-side errors are not failures of the
	// run — but a run where *no* local worker survived deserves a report.
	if cfg.LocalWorkers > 0 {
		if err := errors.Join(workerErrs...); err != nil && summary().Completed == 0 {
			return summary(), err
		}
	}
	return summary(), nil
}

// JoinSweep runs one worker against a coordinator started by
// SweepDistributed (or addict-sweep -serve-workers) at baseURL, computing
// leased units through the shared artifact path until the grid is done. It
// returns the number of units this worker completed. Point StoreDir at the
// same directory as the coordinator's other workers to rendezvous on one
// content-addressed store.
func JoinSweep(ctx context.Context, baseURL string, opts DistWorkerOptions) (int, error) {
	return dist.Work(ctx, baseURL, opts)
}
