// Package addict is the public API of the ADDICT reproduction: advanced
// instruction chasing for transactions (Tözün, Atta, Ailamaki, Moshovos —
// PVLDB 7(14), 2014).
//
// The package wires together the reproduction's subsystems — the
// instrumented storage manager, the TPC workloads, Algorithm 1/2 (migration
// point discovery and core assignment), the scheduling mechanisms (the
// paper's four plus two related-work extensions), and the multicore timing
// simulator — behind a small facade. The typical
// pipeline is:
//
//	eng := addict.NewEngine(addict.WithTraceWindows(1000, 1000, 10000))
//	ctx := context.Background()
//	base, _ := eng.Schedule(ctx, addict.Baseline, "TPC-C")
//	res, _ := eng.Schedule(ctx, addict.ADDICT, "TPC-C") // profiles, then replays
//	fmt.Printf("L1-I MPKI: %.2f -> %.2f\n",
//		base.Machine.MPKI(base.Machine.L1IMisses),
//		res.Machine.MPKI(res.Machine.L1IMisses))
//
// # Sessions and cancellation
//
// Engine is the package's session type: one long-lived artifact cache
// (trace windows, Algorithm 1 profiles, per-mechanism replay results)
// serving many requests, built once with functional options (WithWorkers,
// WithMachine, WithSeed, WithScale, WithTraceWindows, WithProgress). Every
// Engine method is context-first and cancellable between work items —
// generation shards, sweep units, bench cells, experiment sections — so a
// Ctrl-C (via signal.NotifyContext, as all four cmds wire it) unwinds a
// pipeline promptly with a clean partial result. The v1 free functions
// remain as deprecated wrappers, each building a throwaway session per
// call; DESIGN.md §8 has the v1→v2 migration table.
//
// # Parallel experiment engine
//
// The evaluation harness runs either serially (RunAllExperiments) or on a
// bounded worker pool (RunAllExperimentsParallel); the two produce
// byte-identical reports. The determinism guarantee rests on three legs:
// trace generation is sharded — an N-trace request splits into fixed-size
// shards, each produced by an independent benchmark instance seeded from
// (seed, shard) by a splittable PRNG, so the merged set never depends on
// the worker count; shared artifacts (trace sets, profiles, replay
// results) are single-flight memoized in a concurrency-safe workbench; and
// the simulator itself is a deterministic discrete-event engine with a
// total (time, thread-ID) order. ScheduleAll replays a trace set under the
// paper's four mechanisms concurrently, and GenerateTracesSharded exposes the
// worker-count-independent trace generator; cmd/addict-bench drives the
// pool via its -parallel flag.
//
// # Parameter sweeps
//
// RunSweep executes a declarative sensitivity grid (SweepSpec) — axes over
// machine parameters, workloads, mechanisms, thread counts, and admission
// limits — on the same pool with the same byte-identity guarantee,
// streaming results as an aligned table, CSV, or JSON lines. The figure
// pipeline and the sweep pipeline share one execution path (the figure
// runners are presets over sweep units); cmd/addict-sweep is the CLI.
//
// # Synthetic workloads
//
// Beyond the three TPC mixes, SynthBenchmark compiles a declarative
// SynthSpec — table count/sizes, uniform/zipfian/hot-set key skew,
// read/write mix, ops-per-transaction distribution, transaction-type count
// with shared or private code paths, and multi-phase schedules that shift
// skew and mix mid-trace — into an ordinary Workload over a generated
// population. Synthetic workloads are addressable by encoded name
// ("synth:<preset>[+z<theta>][+w<frac>][+h<keys>]", see
// ParseSynthWorkload) in sweep grids, bench configs, and cmd/tracegen
// -synth; generation is sharded and byte-identical for every worker count
// (GenerateSynthTracesSharded), phase schedules included.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package addict

import (
	"context"
	"io"
	"sort"

	"addict/internal/bench"
	"addict/internal/codemap"
	"addict/internal/core"
	"addict/internal/exp"
	"addict/internal/pool"
	"addict/internal/power"
	"addict/internal/sched"
	"addict/internal/sim"
	"addict/internal/stats"
	"addict/internal/storage"
	"addict/internal/store"
	"addict/internal/sweep"
	"addict/internal/trace"
	"addict/internal/workload"
	"addict/internal/workload/synth"
)

// Workload is a populated benchmark that generates transaction traces.
type Workload = workload.Benchmark

// TxnSpec declares one transaction type of a custom workload's mix.
type TxnSpec = workload.TxnSpec

// TraceSet is an ordered collection of transaction traces.
type TraceSet = trace.Set

// Trace is one transaction's recorded execution.
type Trace = trace.Trace

// Profile is Algorithm 1's output: per-(transaction type, operation)
// migration points.
type Profile = core.Profile

// Assignment is Algorithm 2's output: a core map per transaction type.
type Assignment = core.Assignment

// Mechanism names a scheduling mechanism.
type Mechanism = sched.Mechanism

// The evaluated scheduling mechanisms: the paper's four (Section 4.1) plus
// the two related-work extensions (see internal/sched's package doc for
// provenance and DESIGN.md §12 for the mechanism reference).
const (
	Baseline = sched.Baseline
	STREX    = sched.STREX
	SLICC    = sched.SLICC
	ADDICT   = sched.ADDICT
	HTMSPEC  = sched.HTMSPEC
	CHAIN    = sched.CHAIN
)

// Mechanisms lists the paper's four mechanisms in its presentation order —
// the figure experiments' evaluation axis (and ScheduleAll's).
var Mechanisms = sched.Mechanisms

// AllMechanisms lists every implemented mechanism family: the paper's four
// plus HTMSPEC and CHAIN. Name-resolving entry points (sweep grids, the
// serving API, ParseMechanism) accept this set.
var AllMechanisms = sched.AllMechanisms

// ParseMechanism resolves a mechanism name (any letter case, any of
// AllMechanisms) to its canonical constant; unknown names get a
// nearest-name suggestion.
func ParseMechanism(name string) (Mechanism, error) { return sched.ParseMechanism(name) }

// SpecStats are HTMSPEC's speculation counters (Result.Spec); all-zero for
// the non-speculative mechanisms.
type SpecStats = sim.SpecStats

// MachineConfig describes the simulated multicore (Table 1).
type MachineConfig = sim.Config

// Result is the outcome of replaying a trace set under a mechanism.
type Result = sim.Result

// PowerReport is the McPAT-substitute power analysis (Figure 8b).
type PowerReport = power.Report

// StorageManager is the instrumented mini-Shore-MT storage manager; use it
// to build custom workloads (tables, B+tree indexes, the five database
// operations).
type StorageManager = storage.Manager

// Table is a storage-manager table.
type Table = storage.Table

// Txn is a storage-manager transaction context.
type Txn = storage.Txn

// ExperimentParams scopes the evaluation harness.
type ExperimentParams = exp.Params

// CacheStats is a snapshot of a session artifact cache's counters:
// resident bytes (weight estimates), entries, hits, misses, evictions for
// the in-memory layer, plus — when the session has an on-disk artifact
// store attached (WithStore) — the store's hit/miss/write/verify-failure
// and GC counters. The embedded in-memory counters keep the historical
// wire shape; Store marshals as a nested "store" object and is omitted on
// memory-only sessions.
type CacheStats struct {
	pool.CacheStats
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is a snapshot of an on-disk artifact store's counters: hits,
// misses, writes, verify failures (corrupt entries quarantined and
// recomputed), GC evictions, write errors, and the resident entry set.
type StoreStats = store.Stats

// NewTPCB builds and populates the TPC-B benchmark (scale 1.0 ≈ 160k
// accounts).
func NewTPCB(seed int64, scale float64) *Workload { return workload.NewTPCB(seed, scale) }

// NewTPCC builds and populates the TPC-C benchmark (scale 1.0 ≈ 60k
// customers, 2 warehouses).
func NewTPCC(seed int64, scale float64) *Workload { return workload.NewTPCC(seed, scale) }

// NewTPCE builds and populates the TPC-E benchmark (scale 1.0 ≈ 2000
// customers, 20k initial trades).
func NewTPCE(seed int64, scale float64) *Workload { return workload.NewTPCE(seed, scale) }

// NewWorkload resolves a benchmark by name through the workload registry:
// the TPC names ("TPC-B", "TPC-C", "TPC-E") and any registered encoded
// name space — today the synthetic workloads
// ("synth:<preset>[+z<theta>][+w<frac>][+h<keys>]"). One registry backs
// every by-name consumer (sweep grids, bench configs, cmd/tracegen, this
// facade), so a name accepted anywhere is accepted everywhere.
func NewWorkload(name string, seed int64, scale float64) (*Workload, error) {
	r, err := workload.Resolve(name)
	if err != nil {
		return nil, err
	}
	return r.Build(seed, scale)
}

// NewStorageManager returns a storage manager on the standard code layout,
// ready for table creation and population — the substrate for custom
// workloads.
func NewStorageManager() *StorageManager {
	return storage.NewManager(trace.Discard{}, codemap.NewLayout())
}

// NewCustomWorkload assembles a workload from transaction specs over a
// populated storage manager. The specs are validated: an empty list, a
// missing Run, a duplicate name, a negative weight, or an all-zero weight
// total is an error.
func NewCustomWorkload(name string, m *StorageManager, seed int64, specs []TxnSpec) (*Workload, error) {
	return workload.NewCustom(name, m, seed, specs)
}

// SynthSpec declares a synthetic workload: table count and sizes, key-skew
// distribution (uniform/zipfian/hot-set), read/write mix, ops-per-
// transaction distribution, transaction-type count with shared or private
// code paths, and multi-phase schedules that shift skew and mix mid-trace.
// The zero value of every field selects a documented default; see
// internal/workload/synth.
type SynthSpec = synth.Spec

// SynthSkew declares a key-skew distribution within a SynthSpec.
type SynthSkew = synth.Skew

// SynthPhase is one window of a SynthSpec's cyclic phase schedule.
type SynthPhase = synth.Phase

// SynthPresets lists the shipped synthetic-workload preset names, sorted
// ("hotset-write", "long-txn", "phase-shift", "uniform-ro", "zipf-hot-rw").
func SynthPresets() []string { return synth.Presets() }

// ParseSynthWorkload resolves an encoded synthetic workload name —
// "synth:<preset>" with optional "+z<theta>"/"+w<frac>"/"+h<keys>"
// overrides, or a bare preset name — into its spec. These names are
// accepted wherever workloads travel by name: sweep grids (SweepSpec),
// bench configs (BenchConfig.Workloads), and cmd/tracegen -synth.
func ParseSynthWorkload(name string) (SynthSpec, error) { return synth.ParseName(name) }

// SynthBenchmark compiles a synthetic-workload spec into a populated
// benchmark, deterministic in (spec, seed, scale) — the synthetic
// counterpart of NewTPCB/NewTPCC/NewTPCE.
func SynthBenchmark(spec SynthSpec, seed int64, scale float64) (*Workload, error) {
	return synth.New(spec, seed, scale)
}

// GenerateSynthTracesSharded generates n traces of a synthetic workload as
// independent warm-started shards on up to `workers` goroutines (workers
// < 1 selects runtime.GOMAXPROCS(0)). The result is byte-identical for
// every worker count — the same contract as GenerateTracesSharded, with
// phase schedules following the absolute trace index so multi-phase specs
// shard deterministically too.
//
// Deprecated: use Engine.SynthTraces, which adds cancellation and session
// artifact reuse. This wrapper builds a throwaway session per call.
func GenerateSynthTracesSharded(spec SynthSpec, seed int64, scale float64, n, workers int) (*TraceSet, error) {
	e := NewEngine(WithSeed(seed), WithScale(scale), WithWorkers(workers))
	return e.SynthTraces(context.Background(), spec, n)
}

// GenerateTraces collects n transaction traces from the workload.
func GenerateTraces(w *Workload, n int) *TraceSet { return workload.GenerateSet(w, n) }

// GenerateTracesSharded generates n traces of a registry workload name
// ("TPC-B", "TPC-C", "TPC-E", or an encoded "synth:" name) as independent
// warm-started shards on up to `workers` goroutines (workers < 1 selects
// runtime.GOMAXPROCS(0), like every parallel entry point of this package).
// The result is byte-identical for every worker count: shard s is seeded
// deterministically from (seed, s) by a splittable PRNG and populates its
// own database, so shards neither share state nor depend on completion
// order.
//
// Deprecated: use Engine.GenerateTraces, which adds cancellation and
// session artifact reuse. This wrapper builds a throwaway session per
// call.
func GenerateTracesSharded(name string, seed int64, scale float64, n, workers int) (*TraceSet, error) {
	e := NewEngine(WithSeed(seed), WithScale(scale), WithWorkers(workers))
	return e.GenerateTraces(context.Background(), name, n)
}

// StreamTraces generates n traces one at a time without retaining them —
// the memory-bounded path for large stability runs.
func StreamTraces(w *Workload, n int, fn func(i int, t *Trace)) { workload.Stream(w, n, fn) }

// FindMigrationPoints runs Algorithm 1 over profiling traces with the
// Table 1 L1-I geometry and the storage manager's no-migrate zones
// (Section 3.1.3).
func FindMigrationPoints(s *TraceSet) *Profile {
	lay := codemap.NewLayout()
	cfg := core.ProfileConfig{L1I: sim.Shallow().L1I, NoMigrate: lay.NoMigrate}
	return core.FindMigrationPoints(s, cfg)
}

// ShallowMachine returns the Table 1 configuration.
func ShallowMachine() MachineConfig { return sim.Shallow() }

// DeepMachine returns the Section 4.6 deeper hierarchy.
func DeepMachine() MachineConfig { return sim.Deep() }

// Options configures Schedule.
type Options struct {
	// Machine is the simulated hardware; zero value = Table 1.
	Machine *MachineConfig
	// Profile supplies ADDICT's migration points (required for ADDICT).
	Profile *Profile
	// BatchSize overrides the same-type batch size (0 = number of cores).
	BatchSize int
}

// Schedule replays a trace set under the given mechanism and returns the
// simulation result.
func Schedule(mech Mechanism, s *TraceSet, opts Options) (Result, error) {
	machine := sim.Shallow()
	if opts.Machine != nil {
		machine = *opts.Machine
	}
	cfg := sched.DefaultConfig(machine)
	cfg.Profile = opts.Profile
	cfg.BatchSize = opts.BatchSize
	return sched.Run(mech, s, cfg)
}

// ScheduleAll replays a trace set under every mechanism (Baseline, STREX,
// SLICC, ADDICT) concurrently on up to `workers` goroutines (workers < 1
// selects runtime.GOMAXPROCS(0)) and returns the per-mechanism results.
// Each replay builds its own simulated machine and scheduler state over
// the shared read-only trace set and profile, so the results are identical
// to four serial Schedule calls. Options.Profile is required (ADDICT needs
// its migration points).
//
// Deprecated: use Engine.ScheduleSet (for caller-supplied sets) or
// Engine.ScheduleAll (for session-cached workload windows), which add
// cancellation. This wrapper builds a throwaway session per call.
func ScheduleAll(s *TraceSet, opts Options, workers int) (map[Mechanism]Result, error) {
	return NewEngine(WithWorkers(workers)).ScheduleSet(context.Background(), s, opts)
}

// AnalyzePower computes the activity-based power report of a run.
func AnalyzePower(r Result) PowerReport { return power.Analyze(r, power.DefaultWeights()) }

// DefaultExperimentParams returns the paper-faithful evaluation setup
// (1000 profiling + 1000 evaluation traces, 10000 for stability).
func DefaultExperimentParams() ExperimentParams { return exp.DefaultParams() }

// QuickExperimentParams returns a reduced setup for fast runs.
func QuickExperimentParams() ExperimentParams { return exp.QuickParams() }

// NewEngineFromParams translates an explicit evaluation-parameter struct
// into a session — the bridge for callers that already hold an
// ExperimentParams (the cmds, the deprecated experiment wrappers). Every
// field is taken verbatim — including a zero StabilityTraces, which
// WithTraceWindows would otherwise default — so the session reproduces
// the parameter struct's v1 behavior exactly. Extra options (WithStore,
// WithProgress, ...) apply after the parameter translation.
func NewEngineFromParams(p ExperimentParams, workers int, opts ...EngineOption) *Engine {
	e := NewEngine(append([]EngineOption{
		WithSeed(p.Seed), WithScale(p.Scale),
		WithTraceWindows(p.ProfileTraces, p.EvalTraces, p.StabilityTraces),
		WithMachine(p.Machine), WithWorkers(workers)}, opts...)...)
	e.stabilityTraces = p.StabilityTraces
	return e
}

// RunAllExperiments regenerates every table and figure of the paper's
// evaluation serially, writing the report to out.
//
// Deprecated: use Engine.Experiments, which adds cancellation and session
// artifact reuse. This wrapper builds a throwaway single-worker session
// per call; the output is byte-identical.
func RunAllExperiments(out io.Writer, p ExperimentParams) {
	_ = NewEngineFromParams(p, 1).Experiments(context.Background(), out)
}

// RunAllExperimentsParallel regenerates the full report on a bounded worker
// pool (workers < 1 selects runtime.GOMAXPROCS(0)). The output is
// byte-identical to RunAllExperiments: independent experiment units run
// concurrently, each renderer buffers its output, and the buffers are
// emitted in the serial presentation order.
//
// Deprecated: use Engine.Experiments. This wrapper builds a throwaway
// session per call.
func RunAllExperimentsParallel(out io.Writer, p ExperimentParams, workers int) {
	_ = NewEngineFromParams(p, workers).Experiments(context.Background(), out)
}

// RunExperiment runs a single experiment by id ("table1", "fig1" ...
// "fig9", "ablations", "synthchar") serially.
//
// Deprecated: use Engine.Experiments with an explicit id list. This
// wrapper builds a throwaway single-worker session per call.
func RunExperiment(id string, out io.Writer, p ExperimentParams) error {
	return NewEngineFromParams(p, 1).Experiments(context.Background(), out, id)
}

// RunExperimentParallel runs a single experiment by id with up to `workers`
// goroutines of generation/replay parallelism (workers < 1 selects
// runtime.GOMAXPROCS(0)). Output is identical to the serial run.
//
// Deprecated: use Engine.Experiments with an explicit id list. This
// wrapper builds a throwaway session per call.
func RunExperimentParallel(id string, out io.Writer, p ExperimentParams, workers int) error {
	return NewEngineFromParams(p, workers).Experiments(context.Background(), out, id)
}

// ExperimentIDs lists the available experiment ids, sorted.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(exp.Experiments))
	for id := range exp.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SweepSpec is a declarative parameter-sweep grid: axes over machine
// parameters (L1-I/LLC geometry, core count, miss latencies), workloads,
// mechanisms, thread counts, and admission limits. Empty axes take the base
// values; see internal/sweep for the expansion contract.
type SweepSpec = sweep.Spec

// SweepUnit is one expanded sweep point, keyed by a stable ID derived from
// its parameter values.
type SweepUnit = sweep.Unit

// SweepMetrics are the per-unit outcomes a sweep reports.
type SweepMetrics = sweep.Metrics

// SweepFormats lists the built-in sweep output formats ("table", "csv",
// "jsonl").
var SweepFormats = sweep.Formats

// MeasureSweepMetrics reduces a replay result to the sweep metrics — the
// serving daemon's wire form for Schedule outcomes, so a schedule reply
// and a sweep row report identical quantities.
func MeasureSweepMetrics(r Result) SweepMetrics { return sweep.Measure(r) }

// ValidateWorkload reports whether the registry resolves a workload name
// ("TPC-B", "TPC-C", "TPC-E", or an encoded "synth:" name) without
// building anything — the cheap pre-flight check for servers that want to
// reject unknown names before admitting a run.
func ValidateWorkload(name string) error { return workload.Validate(name) }

// RunSweep expands the spec into experiment units, executes them on up to
// `workers` goroutines (workers < 1 selects runtime.GOMAXPROCS(0)), and
// streams results to out in the given format, in grid-expansion order. The
// output is byte-identical for every worker count — the same determinism
// contract as the figure pipeline, which shares this execution path.
//
// Deprecated: use Engine.Sweep, which adds cancellation and session
// artifact reuse across repeated sweeps. This wrapper builds a throwaway
// session per call.
func RunSweep(out io.Writer, spec SweepSpec, format string, workers int) error {
	return NewEngine(WithWorkers(workers)).Sweep(context.Background(), out, spec, format)
}

// ExpandSweep resolves a sweep grid into its units without running them —
// for previewing unit counts and IDs before committing to a long sweep.
func ExpandSweep(spec SweepSpec) ([]SweepUnit, error) { return spec.Expand() }

// BenchConfig scopes a replay-core benchmark harness run (see
// internal/bench). The zero value selects the standard sizes
// (DefaultBenchConfig), which every BENCH_*.json trajectory point uses so
// reports stay comparable across PRs.
type BenchConfig = bench.Config

// BenchReport is one full benchmark-harness run: per mechanism × workload
// replay throughput and allocation behavior, plus the aggregate replay
// summary.
type BenchReport = bench.Report

// BenchFile is the on-disk BENCH_*.json layout: a current report, an
// optional recorded baseline, and the events/sec speedup between them.
type BenchFile = bench.File

// DefaultBenchConfig returns the standard benchmark-harness setup.
func DefaultBenchConfig() BenchConfig { return bench.DefaultConfig() }

// RunBench executes the replay-core benchmark harness, streaming one
// progress line per cell to progress when non-nil.
//
// Deprecated: use Engine.Bench (with WithProgress for the per-cell
// lines), which adds cancellation and session artifact reuse. This
// wrapper builds a throwaway session per call.
func RunBench(cfg BenchConfig, progress io.Writer) (*BenchReport, error) {
	return NewEngine(WithProgress(progress)).Bench(context.Background(), cfg)
}

// BenchGateConfig scopes a bench regression gate: a per-cell budget on
// machine-independent normalized ratios (the primary check) and an
// aggregate events/sec budget (the secondary, machine-dependent check).
type BenchGateConfig = bench.GateConfig

// BenchVerdict is a structured gate verdict: the per-cell table (raw
// speedup, normalized ratio, floor, pass/fail), the worst cell, and the
// aggregate check.
type BenchVerdict = bench.Verdict

// CompareBench pairs a current report with a recorded baseline (nil for
// none) into the on-disk bench-file layout, computing the aggregate and
// per-cell speedups. Baselines that did not measure the same thing — a
// different seed/scale/trace window, different measurement bounds, or a
// different (workload × mechanism) cell set — are refused.
func CompareBench(baseline, current *BenchReport) (*BenchFile, error) {
	return bench.Compare(baseline, current)
}

// GateBenchReports evaluates the per-cell, machine-independent regression
// gate between two recorded reports: every cell's events/sec is normalized
// by the same report's Baseline-mechanism cell on the same workload, so
// the recording machines' absolute speed cancels out of the gated ratio,
// and the gate fails on the worst cell rather than the aggregate. The
// error covers pairs that cannot be judged (incomparable reports, missing
// reference cells); a judged regression is a Verdict with Pass == false.
func GateBenchReports(baseline, current *BenchReport, cfg BenchGateConfig) (*BenchVerdict, error) {
	return bench.Gate(baseline, current, cfg)
}

// ReadBenchFile parses a BENCH_*.json file (or a bare report).
func ReadBenchFile(r io.Reader) (*BenchFile, error) { return bench.ReadFile(r) }

// WriteTraces serializes a trace set in the binary trace format.
func WriteTraces(w io.Writer, s *TraceSet) error { return trace.WriteSet(w, s) }

// ReadTraces deserializes a trace set.
func ReadTraces(r io.Reader) (*TraceSet, error) { return trace.ReadSet(r) }

// WriteProfile persists Algorithm 1's output — the paper's static Step 1,
// "performed a priori", so serving starts with migration points already in
// hand (Section 3.1.3).
func WriteProfile(w io.Writer, p *Profile) error { return core.WriteProfile(w, p) }

// ReadProfile reloads a persisted profile.
func ReadProfile(r io.Reader) (*Profile, error) { return core.ReadProfile(r) }

// ScheduleOnline is ADDICT's pure-dynamic deployment: the first rampUp
// transactions run under traditional scheduling while Algorithm 1 profiles
// them, then the rest migrate over the learned points (Section 3.1.3).
// Returns the combined run and the learned profile.
func ScheduleOnline(s *TraceSet, rampUp int, opts Options) (Result, *Profile, error) {
	machine := sim.Shallow()
	if opts.Machine != nil {
		machine = *opts.Machine
	}
	cfg := sched.DefaultConfig(machine)
	cfg.BatchSize = opts.BatchSize
	lay := codemap.NewLayout()
	return sched.RunOnline(s, cfg, rampUp, lay.NoMigrate)
}

// OverlapBuckets computes the Figure 2 frequency-bucket shares for a group
// of per-instance footprints.
func OverlapBuckets(footprints []map[uint64]struct{}) stats.OverlapResult {
	return stats.Overlap(footprints)
}
