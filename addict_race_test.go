package addict_test

import (
	"context"
	"sync"
	"testing"

	"addict"
	"addict/internal/exp"
	"addict/internal/sim"
)

// TestConcurrentScheduleDeterministic replays one trace set under every
// mechanism from many goroutines at once. All scheduler and simulator state
// must be per-run (this test is the -race probe for internal/sched and
// internal/sim), and every goroutine must compute identical results over
// the shared read-only trace set and profile.
func TestConcurrentScheduleDeterministic(t *testing.T) {
	w := addict.NewTPCB(3, 0.05)
	profSet := addict.GenerateTraces(w, 60)
	prof := addict.FindMigrationPoints(profSet)
	evalSet := addict.GenerateTraces(w, 60)
	opts := addict.Options{Profile: prof}

	const goroutines = 12
	results := make([]map[addict.Mechanism]addict.Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make(map[addict.Mechanism]addict.Result, len(addict.Mechanisms))
			for _, mech := range addict.Mechanisms {
				r, err := addict.Schedule(mech, evalSet, opts)
				if err != nil {
					t.Errorf("goroutine %d: %s: %v", g, mech, err)
					return
				}
				out[mech] = r
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	ref := results[0]
	if ref == nil {
		t.Fatal("no reference result")
	}
	for g := 1; g < goroutines; g++ {
		for _, mech := range addict.Mechanisms {
			a, b := ref[mech], results[g][mech]
			if a.Makespan != b.Makespan || a.TotalLatency != b.TotalLatency ||
				a.Migrations != b.Migrations || a.Machine.L1IMisses != b.Machine.L1IMisses {
				t.Errorf("goroutine %d: %s result diverged (makespan %d vs %d)", g, mech, a.Makespan, b.Makespan)
			}
		}
	}
}

// TestScheduleAllMatchesSerialSchedule: the concurrent facade must return
// exactly what four serial Schedule calls return.
func TestScheduleAllMatchesSerialSchedule(t *testing.T) {
	w := addict.NewTPCC(3, 0.05)
	profSet := addict.GenerateTraces(w, 60)
	prof := addict.FindMigrationPoints(profSet)
	evalSet := addict.GenerateTraces(w, 60)
	opts := addict.Options{Profile: prof}

	all, err := addict.NewEngine(addict.WithWorkers(4)).ScheduleSet(context.Background(), evalSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(addict.Mechanisms) {
		t.Fatalf("ScheduleAll returned %d results, want %d", len(all), len(addict.Mechanisms))
	}
	for _, mech := range addict.Mechanisms {
		serial, err := addict.Schedule(mech, evalSet, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := all[mech]
		if got.Makespan != serial.Makespan || got.TotalLatency != serial.TotalLatency ||
			got.Machine.L1IMisses != serial.Machine.L1IMisses {
			t.Errorf("%s: ScheduleAll makespan %d != serial %d", mech, got.Makespan, serial.Makespan)
		}
	}
}

// TestScheduleAllRequiresProfile: ADDICT's missing-profile error must
// surface through the concurrent path.
func TestScheduleAllRequiresProfile(t *testing.T) {
	w := addict.NewTPCB(3, 0.05)
	set := addict.GenerateTraces(w, 20)
	if _, err := addict.NewEngine(addict.WithWorkers(2)).ScheduleSet(context.Background(), set, addict.Options{}); err == nil {
		t.Error("ScheduleSet without a profile must fail (ADDICT needs migration points)")
	}
}

// TestGenerateTracesShardedWorkerIndependent checks the public sharded
// generator end to end.
func TestGenerateTracesShardedWorkerIndependent(t *testing.T) {
	ctx := context.Background()
	gen := func(workers int) (*addict.TraceSet, error) {
		e := addict.NewEngine(addict.WithSeed(11), addict.WithScale(0.05), addict.WithWorkers(workers))
		return e.GenerateTraces(ctx, "TPC-B", 30)
	}
	ref, err := gen(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		s, err := gen(workers)
		if err != nil {
			t.Fatal(err)
		}
		if s.Digest() != ref.Digest() {
			t.Errorf("sharded generation digest with %d workers differs from serial", workers)
		}
	}
	if _, err := addict.NewEngine().GenerateTraces(ctx, "nope", 10); err == nil {
		t.Error("unknown workload must error")
	}
}

// TestConcurrentWorkbenchAndSchedule mixes concurrent Workbench lookups
// with facade Schedule calls — the cross-layer stress the race suite runs
// under `go test -race`.
func TestConcurrentWorkbenchAndSchedule(t *testing.T) {
	p := exp.Params{Seed: 5, Scale: 0.05, ProfileTraces: 50, EvalTraces: 50, StabilityTraces: 60, Machine: sim.Shallow()}
	wb := exp.NewParallelWorkbench(p, 4)

	w := addict.NewTPCE(7, 0.05)
	profSet := addict.GenerateTraces(w, 50)
	prof := addict.FindMigrationPoints(profSet)
	evalSet := addict.GenerateTraces(w, 50)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := exp.Workloads[g%len(exp.Workloads)]
			wb.ProfileSet(name)
			wb.Profile(name)
			wb.Result(name, addict.Mechanisms[g%len(addict.Mechanisms)])
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mech := addict.Mechanisms[g%len(addict.Mechanisms)]
			if _, err := addict.Schedule(mech, evalSet, addict.Options{Profile: prof}); err != nil {
				t.Errorf("Schedule(%s): %v", mech, err)
			}
		}(g)
	}
	wg.Wait()
}
