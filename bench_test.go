// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4). Each benchmark runs its experiment end to end and reports
// the headline metric through testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benchmarks default to the reduced
// QuickParams sizes; set ADDICT_FULL=1 for the paper-faithful 1000-trace
// runs (several minutes).
package addict_test

import (
	"context"
	"io"
	"os"
	"runtime"
	"testing"

	"addict"
	"addict/internal/exp"
	"addict/internal/sched"
)

func benchParams() exp.Params {
	if os.Getenv("ADDICT_FULL") != "" {
		return exp.DefaultParams()
	}
	p := exp.QuickParams()
	return p
}

// sharedBench caches one workbench across benchmarks within a run.
var sharedBench *exp.Workbench

func bench(b *testing.B) *exp.Workbench {
	b.Helper()
	if sharedBench == nil {
		sharedBench = exp.NewWorkbench(benchParams())
	}
	return sharedBench
}

func BenchmarkTable1SystemParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table1(io.Discard, addict.ShallowMachine())
	}
}

func BenchmarkFig1OperationFootprints(b *testing.B) {
	w := bench(b)
	w.ProfileSet("TPC-C") // setup outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := exp.Fig1(w)
		b.ReportMetric(float64(r.OpFootprint[2]), "probe-blocks") // OpIndexProbe=1? keep stable metric
	}
}

func BenchmarkFig2FootprintOverlap(b *testing.B) {
	w := bench(b)
	for _, name := range exp.Workloads {
		w.ProfileSet(name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range exp.Workloads {
			r := exp.Fig2(w, name)
			if name == "TPC-B" {
				b.ReportMetric(r.MixInstr.CommonShare()*100, "instr-common-%")
				b.ReportMetric(r.MixData.CommonShare()*100, "data-common-%")
			}
		}
	}
}

func BenchmarkFig3ReuseProfile(b *testing.B) {
	w := bench(b)
	w.ProfileSet("TPC-B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := exp.Fig3(w)
		b.ReportMetric(r.TxnInstr[len(r.TxnInstr)-1].AvgReuse, "always-band-reuse")
	}
}

func BenchmarkFig4MigrationPointStability(b *testing.B) {
	w := bench(b)
	w.Profile("TPC-B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := exp.Fig4(w, "TPC-B")
		if len(r.At10k) > 0 {
			b.ReportMetric(r.At10k[0].MatchRate()*100, "stability-%")
		}
	}
}

func BenchmarkFig5CacheMisses(b *testing.B) {
	w := bench(b)
	for i := 0; i < b.N; i++ {
		var addictL1I float64
		for _, name := range exp.Workloads {
			c := exp.Compare(w, name)
			if name == "TPC-B" {
				addictL1I = c.Row(sched.ADDICT).L1IN
			}
		}
		b.ReportMetric(addictL1I, "ADDICT-L1I-norm")
	}
}

func BenchmarkFig6Performance(b *testing.B) {
	w := bench(b)
	for i := 0; i < b.N; i++ {
		var cyc float64
		for _, name := range exp.Workloads {
			c := exp.Compare(w, name)
			if name == "TPC-B" {
				cyc = c.Row(sched.ADDICT).CyclesN
			}
		}
		b.ReportMetric(cyc, "ADDICT-cycles-norm")
	}
}

func BenchmarkFig7BatchSizeSweep(b *testing.B) {
	w := bench(b)
	w.Result("TPC-B", sched.Baseline)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := exp.Fig7(w, "TPC-B")
		b.ReportMetric(r.Points[len(r.Points)-1].CyclesN, "batch32-cycles-norm")
	}
}

func BenchmarkFig8aDeepHierarchy(b *testing.B) {
	w := bench(b)
	w.Profile("TPC-B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := exp.Fig8a(w, "TPC-B")
		b.ReportMetric(r.CyclesN, "deep-cycles-norm")
	}
}

func BenchmarkFig8bPower(b *testing.B) {
	w := bench(b)
	for i := 0; i < b.N; i++ {
		c := exp.Compare(w, "TPC-B")
		b.ReportMetric(c.Row(sched.ADDICT).PowerN, "ADDICT-power-norm")
	}
}

func BenchmarkFig9Overheads(b *testing.B) {
	w := bench(b)
	for i := 0; i < b.N; i++ {
		c := exp.Compare(w, "TPC-B")
		b.ReportMetric(c.Row(sched.ADDICT).SwitchesPerKI, "ADDICT-moves-per-ki")
		b.ReportMetric(c.Row(sched.ADDICT).OverheadShare*100, "ADDICT-overhead-%")
	}
}

func BenchmarkAblations(b *testing.B) {
	w := bench(b)
	for i := 0; i < b.N; i++ {
		r := exp.Ablate(w, "TPC-B")
		if len(r.Rows) > 0 {
			b.ReportMetric(r.Rows[0].CyclesN, "ADDICT-cycles-norm")
		}
	}
}

// BenchmarkRunAllSerial regenerates the entire report serially — the
// baseline the parallel engine is measured against.
func BenchmarkRunAllSerial(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		exp.RunAll(io.Discard, p)
	}
}

// BenchmarkRunAllParallel regenerates the entire report on a worker pool
// sized to the available CPUs. Output is byte-identical to the serial run
// (see TestRunAllParallelMatchesSerial); wall-clock drops roughly with the
// core count because the per-(workload, mechanism) simulations, the
// per-figure analyses, and sharded trace generation all spread across the
// pool. Compare against BenchmarkRunAllSerial:
//
//	go test -bench 'BenchmarkRunAll' -benchtime 1x
func BenchmarkRunAllParallel(b *testing.B) {
	p := benchParams()
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		exp.RunAllParallel(io.Discard, p, workers)
	}
}

// BenchmarkTraceGenerationSharded gauges the worker-count-independent
// sharded generator at full pool width.
func BenchmarkTraceGenerationSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set, err := addict.NewEngine(addict.WithSeed(1), addict.WithScale(0.25)).
			GenerateTraces(context.Background(), "TPC-B", 256)
		if err != nil {
			b.Fatalf("sharded generation failed: %v", err)
		}
		if len(set.Traces) != 256 {
			b.Fatalf("sharded generation returned %d traces, want 256", len(set.Traces))
		}
	}
}

// BenchmarkTraceGeneration gauges the trace generator itself (the
// reproduction's Pin substitute).
func BenchmarkTraceGeneration(b *testing.B) {
	w := addict.NewTPCB(1, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := addict.GenerateTraces(w, 50)
		if len(set.Traces) != 50 {
			b.Fatal("bad trace count")
		}
	}
}

// BenchmarkProfiling gauges Algorithm 1 on its own.
func BenchmarkProfiling(b *testing.B) {
	w := bench(b)
	set := w.ProfileSet("TPC-B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := addict.FindMigrationPoints(set)
		if len(p.Txns) == 0 {
			b.Fatal("empty profile")
		}
	}
}
